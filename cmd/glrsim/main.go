// Command glrsim runs DTN simulation scenarios from flags and prints
// their metrics — one run, a multi-seed replication sweep, or a
// GLR-vs-epidemic comparison on identical workloads. It is a thin CLI
// over the composable glr scenario API: mobility models and traffic
// workloads plug in by name, a sampling interval streams a time series
// of the run, and replication sweeps use all cores.
//
// Examples:
//
//	glrsim -range 100 -messages 500
//	glrsim -range 50 -messages 890 -storage 100 -compare
//	glrsim -range 100 -protocol epidemic -seed 7
//	glrsim -mobility walk -workload poisson -rate 2 -messages 400
//	glrsim -range 100 -compare -runs 10            # mean ± 90% CI on all cores
//	glrsim -range 100 -sample 60                   # per-minute time series
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"glr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glrsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		protocol  = flag.String("protocol", "glr", `routing protocol: "glr" or "epidemic"`)
		rangeM    = flag.Float64("range", 100, "transmission range in metres (paper: 50-250)")
		nodes     = flag.Int("nodes", 50, "number of mobile nodes")
		messages  = flag.Int("messages", 200, "number of generated messages")
		simTime   = flag.Float64("time", 0, "simulation horizon in seconds (0 = auto)")
		storage   = flag.Int("storage", 0, "per-node storage limit in messages (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "RNG seed (base seed for -runs sweeps)")
		width     = flag.Float64("width", 1500, "region width, metres")
		height    = flag.Float64("height", 300, "region height, metres")
		compare   = flag.Bool("compare", false, "run both protocols on identical workloads")
		runs      = flag.Int("runs", 1, "replications (seeds seed..seed+runs-1), aggregated as mean ± 90% CI")
		workers   = flag.Int("workers", 0, "worker pool size for -runs > 1 (0 = all cores)")
		sample    = flag.Float64("sample", 0, "print a time-series sample every this many simulated seconds (single runs only)")
		mobModel  = flag.String("mobility", "waypoint", `mobility model: "waypoint", "static", or "walk"`)
		maxSpeed  = flag.Float64("speed", 20, "top speed, m/s (waypoint and walk)")
		pause     = flag.Float64("pause", 0, "waypoint pause time, seconds")
		legTime   = flag.Float64("leg", 20, "random-walk straight-leg duration, seconds")
		workModel = flag.String("workload", "paper", `traffic workload: "paper", "uniform", "poisson", or "hotspot"`)
		rate      = flag.Float64("rate", 1, "workload message rate, msgs/s (uniform, poisson, hotspot)")
		sinks     = flag.Int("sinks", 1, "hotspot workload: number of sink nodes")
		copies    = flag.Int("copies", 0, "force GLR copy count (0 = Algorithm 1 decides)")
		check     = flag.Float64("check", 0, "GLR route-check interval in seconds (0 = paper default 0.9)")
		noCustody = flag.Bool("no-custody", false, "disable GLR custody transfer")
		location  = flag.String("location", "source", `destination-location knowledge: "source", "all", or "none"`)
	)
	flag.Parse()

	// Ctrl-C abandons in-flight simulations cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var mob glr.Mobility
	switch *mobModel {
	case "waypoint":
		mob = glr.Waypoint{MaxSpeed: *maxSpeed, Pause: *pause}
	case "static":
		mob = glr.Static{}
	case "walk":
		mob = glr.RandomWalk{MaxSpeed: *maxSpeed, LegTime: *legTime}
	default:
		return fmt.Errorf("unknown mobility model %q", *mobModel)
	}

	var work glr.Workload
	switch *workModel {
	case "paper":
		work = glr.PaperWorkload{Messages: *messages}
	case "uniform":
		work = glr.UniformWorkload{Messages: *messages, Rate: *rate}
	case "poisson":
		work = glr.PoissonWorkload{Messages: *messages, Rate: *rate}
	case "hotspot":
		work = glr.HotspotWorkload{Messages: *messages, Rate: *rate, Sinks: *sinks}
	default:
		return fmt.Errorf("unknown workload %q", *workModel)
	}

	opts := []glr.Option{
		glr.WithProtocol(glr.Protocol(*protocol)),
		glr.WithNodes(*nodes),
		glr.WithRange(*rangeM),
		glr.WithRegion(*width, *height),
		glr.WithSeed(*seed),
		glr.WithMobility(mob),
		glr.WithWorkload(work),
		glr.WithGLR(glr.GLRConfig{
			CheckInterval:  *check,
			Copies:         *copies,
			DisableCustody: *noCustody,
			Location:       *location,
		}),
	}
	if *simTime > 0 {
		opts = append(opts, glr.WithSimTime(*simTime))
	}
	if *storage > 0 {
		opts = append(opts, glr.WithStorageLimit(*storage))
	}
	if *sample > 0 && (*runs > 1 || *compare) {
		// Runner sweeps run replications concurrently and detach
		// observers; refuse rather than silently dropping the request.
		return fmt.Errorf("-sample needs a single plain run (drop -compare / -runs)")
	}
	if *sample > 0 {
		opts = append(opts, glr.WithObserver(&glr.Observer{
			SampleEvery: *sample,
			OnSample: func(s glr.Sample) {
				fmt.Printf("t=%6.0fs  generated=%-4d delivered=%-4d ratio=%.2f  latency=%6.1fs  buffered=%d (max %d/node)  frames: ctrl=%d data=%d ack=%d\n",
					s.Time, s.Generated, s.Delivered, s.DeliveryRatio, s.AvgLatency,
					s.BufferTotal, s.BufferMax, s.ControlFrames, s.DataFrames, s.Acks)
			},
		}))
	}

	sc, err := glr.NewScenario(opts...)
	if err != nil {
		return err
	}

	switch {
	case *runs > 1 && *compare:
		r := glr.Runner{Workers: *workers}
		cmp, err := r.Compare(ctx, sc, *runs)
		if err != nil {
			return err
		}
		fmt.Printf("GLR:      %v\n", cmp.GLR)
		fmt.Printf("Epidemic: %v\n", cmp.Epidemic)
	case *runs > 1:
		r := glr.Runner{Workers: *workers}
		sum, err := r.Replicate(ctx, sc, *runs)
		if err != nil {
			return err
		}
		fmt.Printf("%v\n", sum)
		for i, res := range sum.Results {
			fmt.Printf("  seed %-3d %v\n", sum.Seeds[i], res)
		}
	case *compare:
		r := glr.Runner{Workers: *workers}
		cmp, err := r.Compare(ctx, sc, 1)
		if err != nil {
			return err
		}
		fmt.Printf("GLR:      %v\n", cmp.GLR.Results[0])
		fmt.Printf("Epidemic: %v\n", cmp.Epidemic.Results[0])
	default:
		res, err := sc.RunContext(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %v\n", *protocol+":", res)
		fmt.Printf("frames: control=%d data=%d acks=%d duplicates=%d\n",
			res.ControlFrames, res.DataFrames, res.Acks, res.Duplicates)
	}
	return nil
}
