// Command glrsim runs one DTN simulation scenario from flags and prints
// its metrics — optionally comparing GLR against the epidemic baseline on
// the identical workload.
//
// Examples:
//
//	glrsim -range 100 -messages 500
//	glrsim -range 50 -messages 890 -storage 100 -compare
//	glrsim -range 100 -protocol epidemic -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"glr"
)

func main() {
	var (
		protocol  = flag.String("protocol", "glr", `routing protocol: "glr" or "epidemic"`)
		rangeM    = flag.Float64("range", 100, "transmission range in metres (paper: 50-250)")
		nodes     = flag.Int("nodes", 50, "number of mobile nodes")
		messages  = flag.Int("messages", 200, "messages generated with the paper's 45-source pattern")
		simTime   = flag.Float64("time", 0, "simulation horizon in seconds (0 = auto)")
		storage   = flag.Int("storage", 0, "per-node storage limit in messages (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "RNG seed")
		static    = flag.Bool("static", false, "disable mobility (uniform static placement)")
		maxSpeed  = flag.Float64("speed", 20, "random-waypoint max speed, m/s")
		width     = flag.Float64("width", 1500, "region width, metres")
		height    = flag.Float64("height", 300, "region height, metres")
		compare   = flag.Bool("compare", false, "run both protocols on the identical workload")
		copies    = flag.Int("copies", 0, "force GLR copy count (0 = Algorithm 1 decides)")
		check     = flag.Float64("check", 0, "GLR route-check interval in seconds (0 = paper default 0.9)")
		noCustody = flag.Bool("no-custody", false, "disable GLR custody transfer")
		location  = flag.String("location", "source", `destination-location knowledge: "source", "all", or "none"`)
	)
	flag.Parse()

	cfg := glr.DefaultConfig(*rangeM)
	cfg.Protocol = glr.Protocol(*protocol)
	cfg.Nodes = *nodes
	cfg.Messages = *messages
	cfg.SimTime = *simTime
	cfg.StorageLimit = *storage
	cfg.Seed = *seed
	cfg.Static = *static
	cfg.MaxSpeed = *maxSpeed
	cfg.Width, cfg.Height = *width, *height
	cfg.GLRConfig = &glr.GLRConfig{
		CheckInterval:  *check,
		Copies:         *copies,
		DisableCustody: *noCustody,
		Location:       *location,
	}

	if *compare {
		mine, base, err := glr.Compare(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glrsim:", err)
			os.Exit(1)
		}
		fmt.Printf("GLR:      %v\n", mine)
		fmt.Printf("Epidemic: %v\n", base)
		return
	}
	res, err := glr.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glrsim:", err)
		os.Exit(1)
	}
	fmt.Printf("%-9s %v\n", cfg.Protocol+":", res)
	fmt.Printf("frames: control=%d data=%d acks=%d duplicates=%d\n",
		res.ControlFrames, res.DataFrames, res.Acks, res.Duplicates)
}
