// Command topoviz renders random-topology snapshots in the style of the
// paper's Figure 1: node placements, unit-disk connectivity, and the
// derived routing graphs (Gabriel graph and 2-LDTG planar spanner).
//
// Examples:
//
//	topoviz -radius 250
//	topoviz -radius 100 -nodes 50 -w 1000 -h 1000 -graph ldtg
//	topoviz -radius 150 -stats
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"glr/internal/asciiplot"
	"glr/internal/geom"
	"glr/internal/ldt"
)

func main() {
	var (
		radius = flag.Float64("radius", 250, "transmission radius in metres")
		nodes  = flag.Int("nodes", 50, "number of nodes")
		width  = flag.Float64("w", 1000, "region width, metres")
		height = flag.Float64("h", 1000, "region height, metres")
		seed   = flag.Int64("seed", 1, "RNG seed")
		graph  = flag.String("graph", "udg", `graph to draw: "udg", "gabriel", or "ldtg"`)
		stats  = flag.Bool("stats", false, "print connectivity statistics over 100 seeds")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	pts := make([]geom.Point, *nodes)
	pp := make([][2]float64, *nodes)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()**width, rng.Float64()**height)
		pp[i] = [2]float64{pts[i].X, pts[i].Y}
	}

	var g *geom.Graph
	var err error
	switch *graph {
	case "udg":
		g = geom.UnitDiskGraph(pts, *radius)
	case "gabriel":
		g = ldt.GabrielGraph(pts, *radius)
	case "ldtg":
		g, err = ldt.BuildLDTG(pts, *radius, 2)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topoviz:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "topoviz: unknown graph %q\n", *graph)
		os.Exit(2)
	}

	fmt.Print(asciiplot.Scatter{
		Title: fmt.Sprintf("%d nodes, radius %.0f m, %s (%d edges, %d components)",
			*nodes, *radius, *graph, g.EdgeCount(), len(g.Components())),
		W:      *width,
		H:      *height,
		Points: pp,
		Edges:  g.Edges(),
	}.Render())

	if *stats {
		connected, edgeSum, isoSum := 0, 0, 0
		const trials = 100
		for t := 0; t < trials; t++ {
			r2 := rand.New(rand.NewSource(*seed + int64(t)))
			ps := make([]geom.Point, *nodes)
			for i := range ps {
				ps[i] = geom.Pt(r2.Float64()**width, r2.Float64()**height)
			}
			ug := geom.UnitDiskGraph(ps, *radius)
			if ug.Connected() {
				connected++
			}
			edgeSum += ug.EdgeCount()
			for _, c := range ug.Components() {
				if len(c) == 1 {
					isoSum++
				}
			}
		}
		thresh := geom.ConnectivityThreshold(*nodes, *width**height, 10)
		fmt.Printf("\nOver %d seeds: connected %d%%, avg edges %.1f, avg isolated nodes %.2f\n",
			trials, connected*100/trials, float64(edgeSum)/trials, float64(isoSum)/trials)
		fmt.Printf("Connectivity threshold radius r* (s=10): %.1f m — Algorithm 1 uses %s\n",
			thresh, copyRule(*radius, thresh))
	}
}

func copyRule(r, thresh float64) string {
	if r >= thresh {
		return "a single copy (network likely connected)"
	}
	return "multiple copies (sparse network)"
}
