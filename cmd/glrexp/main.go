// Command glrexp regenerates the paper's evaluation artifacts — every
// table and figure of §3 — and prints them with paper-vs-measured
// comparisons.
//
// Examples:
//
//	glrexp -list
//	glrexp -exp fig7
//	glrexp -exp tab6 -scale paper
//	glrexp -all
//	glrexp -exp scale -sizes 500 -runs 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	glrexp -exp scale -sizes 10000 -memreport mem.json
//
// -sizes entries at or above experiments.GiantTierNodes run the reduced
// giant-world protocol (GiantSweep): fast path vs heap event core, one
// run each, peak-heap sampling. -memreport writes their machine-readable
// digest for cmd/benchgate's -gate-mem-ceiling CI gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"glr"
	"glr/internal/experiments"
)

func main() {
	// All work happens in run so deferred profile flushes execute before
	// the process exits — os.Exit here would truncate the CPU profile
	// and drop the heap profile exactly when a failing run needs them.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glrexp:", err)
		if err == errUsage {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("need -list, -exp, or -all")

func run() error {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		exp        = flag.String("exp", "", "experiment id to run (fig1, fig3, fig4..7, tab2..6, ablate, scale)")
		all        = flag.Bool("all", false, "run every experiment")
		scale      = flag.String("scale", "quick", `"quick" (3 runs, 20% load) or "paper" (10 runs, full load)`)
		verbose    = flag.Bool("v", false, "print per-point progress")
		sizes      = flag.String("sizes", "", "scale experiment only: comma-separated node counts (e.g. 500 or 250,1000)")
		runs       = flag.Int("runs", 0, "scale experiment only: override replications per point (the sweep caps this at 3; see NodeCountSweep)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		memreport  = flag.String("memreport", "", "scale experiment only: write the giant-tier peak-heap/wall-clock digest (JSON) to this file")
	)
	flag.Parse()

	sc := glr.Quick
	switch *scale {
	case "quick":
	case "paper":
		sc = glr.Paper
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	if *list {
		for _, info := range glr.Experiments() {
			fmt.Printf("%-5s %-9s %s\n", info.ID, info.Title, info.Description)
		}
		return nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	var progress func(string, ...any)
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	// Ctrl-C abandons queued replications and stops in-flight
	// simulations between event batches.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runOne := func(id string) error {
		out, err := runExperiment(ctx, id, sc, progress, *sizes, *runs, *memreport)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}

	switch {
	case *all:
		for _, info := range glr.Experiments() {
			fmt.Printf("=== %s: %s ===\n", info.Title, info.Description)
			if err := runOne(info.ID); err != nil {
				return err
			}
		}
		return nil
	case *exp != "":
		return runOne(*exp)
	default:
		return errUsage
	}
}

// runExperiment dispatches one artifact; the scale sweep honours the
// -sizes/-runs/-memreport overrides (the CI profile job runs a single
// 500-node point; the CI memory-ceiling job a single 10k-node giant
// point). Sizes at or above experiments.GiantTierNodes route to the
// reduced giant-world protocol.
func runExperiment(ctx context.Context, id string, sc glr.Scale, progress func(string, ...any), sizes string, runs int, memreport string) (string, error) {
	if id != "scale" || (sizes == "" && runs == 0 && memreport == "") {
		return glr.RunExperimentContext(ctx, id, sc, progress)
	}
	o := experiments.QuickOptions()
	if sc == glr.Paper {
		o = experiments.PaperOptions()
	}
	o.Ctx = ctx
	o.Progress = progress
	if runs > 0 {
		o.Runs = runs
	}
	sz, err := parseSizes(sizes)
	if err != nil {
		return "", err
	}
	var small, giant []int
	for _, n := range sz {
		if n >= experiments.GiantTierNodes {
			giant = append(giant, n)
		} else {
			small = append(small, n)
		}
	}
	var out strings.Builder
	if len(small) > 0 || sizes == "" {
		res, err := experiments.NodeCountSweep(o, small)
		if err != nil {
			return "", err
		}
		out.WriteString(res.Render())
	}
	gres := &experiments.GiantResult{}
	if len(giant) > 0 {
		if gres, err = experiments.GiantSweep(o, giant); err != nil {
			return "", err
		}
		out.WriteString(gres.Render())
	}
	if memreport != "" {
		data, err := json.MarshalIndent(gres.MemReport(), "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(memreport, append(data, '\n'), 0o644); err != nil {
			return "", err
		}
	}
	return out.String(), nil
}

// parseSizes parses "500" or "250,1000" ("" means the default sweep).
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("glrexp: bad -sizes entry %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

// writeMemProfile records the post-GC heap at exit.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glrexp:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "glrexp:", err)
	}
}
