// Command glrexp regenerates the paper's evaluation artifacts — every
// table and figure of §3 — and prints them with paper-vs-measured
// comparisons.
//
// Examples:
//
//	glrexp -list
//	glrexp -exp fig7
//	glrexp -exp tab6 -scale paper
//	glrexp -all
package main

import (
	"flag"
	"fmt"
	"os"

	"glr"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("exp", "", "experiment id to run (fig1, fig3, fig4..7, tab2..6)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.String("scale", "quick", `"quick" (3 runs, 20% load) or "paper" (10 runs, full load)`)
		verbose = flag.Bool("v", false, "print per-point progress")
	)
	flag.Parse()

	sc := glr.Quick
	switch *scale {
	case "quick":
	case "paper":
		sc = glr.Paper
	default:
		fmt.Fprintf(os.Stderr, "glrexp: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *list {
		for _, info := range glr.Experiments() {
			fmt.Printf("%-5s %-9s %s\n", info.ID, info.Title, info.Description)
		}
		return
	}

	var progress func(string, ...any)
	if *verbose {
		progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	runOne := func(id string) {
		out, err := glr.RunExperimentVerbose(id, sc, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glrexp:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	switch {
	case *all:
		for _, info := range glr.Experiments() {
			fmt.Printf("=== %s: %s ===\n", info.Title, info.Description)
			runOne(info.ID)
		}
	case *exp != "":
		runOne(*exp)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
