// Command glratlas builds the committed scenario atlas: it executes the
// declared scenario matrix (internal/matrix.DefaultSections) against the
// on-disk result cache, recomputing only cells without a valid cache
// entry, then renders docs/ATLAS.md and docs/atlas.json and checks the
// paper-figure slice against ci/atlas_golden.json.
//
// Usage:
//
//	glratlas [-cache dir] [-out dir] [-golden file] [-write-golden]
//	         [-short] [-workers n] [-v]
//
// With a warm cache the whole invocation is pure rendering and completes
// in well under a second; the rendered artifacts are byte-identical to
// the run that computed the cells. Exit status is non-zero on any error,
// including a golden mismatch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"glr/internal/matrix"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "glratlas:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cacheDir    = flag.String("cache", filepath.Join("docs", "atlas-cache"), "result cache directory (empty disables caching)")
		outDir      = flag.String("out", "docs", "output directory for ATLAS.md and atlas.json")
		goldenPath  = flag.String("golden", filepath.Join("ci", "atlas_golden.json"), "golden file for the paper-figure slice (empty skips the check)")
		writeGolden = flag.Bool("write-golden", false, "rewrite the golden file from this run instead of checking against it")
		short       = flag.Bool("short", false, "build the small CI smoke slice instead of the full atlas")
		workers     = flag.Int("workers", 0, "concurrent replications (0 = GOMAXPROCS)")
		verbose     = flag.Bool("v", false, "log per-run progress")
	)
	flag.Parse()

	sections := matrix.DefaultSections()
	if *short {
		sections = matrix.ShortSections()
	}
	d := &matrix.Driver{Cache: *cacheDir, Workers: *workers}
	if *verbose {
		d.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	atlas, err := d.Run(context.Background(), sections)
	if err != nil {
		return err
	}
	fmt.Printf("atlas %s: %d cell(s) from cache, %d computed\n", atlas.Version, atlas.CacheHits, atlas.Computed)

	var golden *matrix.Golden
	switch {
	case *short:
		// The smoke slice has no pinned section; golden handling is a
		// no-op so CI can run it with default flags.
	case *writeGolden:
		golden, err = matrix.GoldenFromAtlas(atlas, matrix.GoldenSection)
		if err != nil {
			return err
		}
		if err := matrix.WriteGolden(*goldenPath, golden); err != nil {
			return err
		}
		fmt.Printf("wrote golden %s (%d cell(s))\n", *goldenPath, len(golden.Cells))
	case *goldenPath != "":
		golden, err = matrix.ReadGolden(*goldenPath)
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("golden %s missing; bootstrap it with -write-golden", *goldenPath)
		}
		if err != nil {
			return err
		}
		if err := golden.Check(atlas); err != nil {
			return err
		}
		fmt.Printf("golden check passed (%d cell(s) within CI bounds)\n", len(golden.Cells))
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	mdPath := filepath.Join(*outDir, "ATLAS.md")
	if err := os.WriteFile(mdPath, []byte(atlas.Markdown(golden)), 0o644); err != nil {
		return err
	}
	raw, err := atlas.JSON()
	if err != nil {
		return err
	}
	jsonPath := filepath.Join(*outDir, "atlas.json")
	if err := os.WriteFile(jsonPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("rendered %s and %s\n", mdPath, jsonPath)
	return nil
}
