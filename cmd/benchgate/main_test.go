package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGateMemCeiling pins the -gate-mem-ceiling verdicts: under-ceiling
// passes, over-ceiling fails, and a budgeted scenario missing from the
// measurement fails (silently dropping a tier must not pass the gate).
func TestGateMemCeiling(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	budget := write("budget.json", `{"ceilings": {"scale-10000": 1000000, "scale-100000": 5000000}}`)

	ok := write("ok.json", `{
		"scale-10000":  {"n": 10000,  "peak_heap_bytes": 900000,  "wall_ms": 100},
		"scale-100000": {"n": 100000, "peak_heap_bytes": 4000000, "wall_ms": 900},
		"scale-5000":   {"n": 5000,   "peak_heap_bytes": 9000000, "wall_ms": 50}
	}`)
	failures, report, err := gateMemCeiling(ok, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("under-ceiling run failed the gate: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "unbudgeted") {
		t.Fatalf("unbudgeted scenario not reported:\n%s", report)
	}

	over := write("over.json", `{
		"scale-10000":  {"n": 10000,  "peak_heap_bytes": 1000001, "wall_ms": 100},
		"scale-100000": {"n": 100000, "peak_heap_bytes": 4000000, "wall_ms": 900}
	}`)
	failures, report, err = gateMemCeiling(over, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0] != "scale-10000" {
		t.Fatalf("over-ceiling failures = %v\n%s", failures, report)
	}

	missing := write("missing.json", `{
		"scale-10000": {"n": 10000, "peak_heap_bytes": 900000, "wall_ms": 100}
	}`)
	failures, _, err = gateMemCeiling(missing, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0] != "scale-100000" {
		t.Fatalf("missing-scenario failures = %v", failures)
	}

	if _, _, err := gateMemCeiling(ok, write("empty.json", `{"ceilings": {}}`)); err == nil {
		t.Fatal("empty budget accepted")
	}
}
