// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on benchmark regressions.
//
// Usage:
//
//	go test -bench '...' -benchmem -count 5 -run '^$' ./... | tee bench.txt
//	benchgate -in bench.txt -write ci/bench_baseline.json        # refresh baseline
//	benchgate -in bench.txt -baseline ci/bench_baseline.json \
//	          -out BENCH_spanner.json -tolerance 0.15           # gate
//
// Parsing takes the MEDIAN of each metric across the -count repetitions
// of each benchmark, which is robust to scheduler noise. Three metrics
// are gated:
//
//   - ns/op, normalized by the BenchmarkCalibration probe (a fixed
//     CPU-bound workload): the gate compares (current ns/op ÷ current
//     calibration) vs (baseline ns/op ÷ baseline calibration), so a
//     slower or faster CI runner shifts every benchmark and the probe
//     together and cancels out, while a real code regression moves only
//     the affected benchmarks.
//   - B/op and allocs/op (from -benchmem), compared raw — allocation
//     behaviour is machine-independent — with the same fractional
//     tolerance plus a small absolute slack so near-zero baselines do
//     not trip on a single stray allocation.
//
// A benchmark fails when any gated metric exceeds its allowance.
// Benchmarks present in the baseline but missing from the run fail the
// gate; new benchmarks are reported and recorded but not gated.
// Baselines written before the memory metrics existed (no B/op fields)
// gate ns/op only.
//
// -skip-ns takes a regexp of benchmark names (without the Benchmark
// prefix) whose ns/op is informational only: wall-clock
// macro-benchmarks — like the parallel Runner sweeps, whose time
// depends on the host's core count in a way the single-threaded
// calibration probe cannot normalize — are recorded in the baseline
// for visibility but gate only on their (machine-independent) B/op and
// allocs/op. -skip-mem does the same for the memory metrics: benchmarks
// whose allocation profile legitimately varies with the host — the
// sharded world benchmarks size their worker pool (and its buffers)
// from GOMAXPROCS — are recorded but not gated on B/op or allocs/op.
//
// A second, independent mode gates absolute memory ceilings instead of
// benchmark regressions:
//
//	glrexp -exp scale -sizes 10000 -memreport mem.json
//	benchgate -gate-mem-ceiling mem.json -mem-budget ci/mem_budget.json
//
// The budget file commits a peak-heap ceiling in bytes per giant-tier
// scenario; the gate fails when a measured peak exceeds its ceiling or
// a budgeted scenario is missing from the measurement. Peaks are
// sampled HeapAlloc (see experiments.GiantSweep), so ceilings should
// carry comfortable headroom over a healthy run — the gate exists to
// catch the state plane regressing back toward O(n²), not GC jitter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// calibrationName marks the machine-speed probe; it is recorded but never
// gated.
const calibrationName = "Calibration"

// Absolute slack for the memory gates: regressions within these extra
// amounts are tolerated on top of the fractional tolerance, so
// zero-allocation baselines do not fail on noise like a one-off pool
// growth.
const (
	allocSlack = 1.0  // allocs/op
	bytesSlack = 64.0 // B/op
)

// Entry is one benchmark's digest (medians across repetitions).
type Entry struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Samples     int      `json:"samples"`
}

// File is the JSON schema shared by the baseline and the emitted report.
type File struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)
	bytesField = regexp.MustCompile(`([0-9.]+)\s+B/op`)
	allocField = regexp.MustCompile(`([0-9.]+)\s+allocs/op`)
)

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		write     = flag.String("write", "", "write/refresh the baseline at this path and exit")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against")
		out       = flag.String("out", "", "write the current digest (with verdicts in the note) to this path")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional regression per metric (ns/op normalized; B/op and allocs/op raw)")
		skipNs    = flag.String("skip-ns", "", "regexp of benchmark names (sans Benchmark prefix) whose ns/op is informational only; memory metrics still gate")
		skipMem   = flag.String("skip-mem", "", "regexp of benchmark names (sans Benchmark prefix) whose B/op and allocs/op are informational only (host-dependent allocation profiles)")
		gateMem   = flag.String("gate-mem-ceiling", "", "measured memory report (from `glrexp -memreport`); gate its peaks against -mem-budget and exit")
		memBudget = flag.String("mem-budget", "ci/mem_budget.json", "committed per-scenario peak-heap ceilings (bytes) for -gate-mem-ceiling")
	)
	flag.Parse()

	if *gateMem != "" {
		failures, report, err := gateMemCeiling(*gateMem, *memBudget)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		if len(failures) > 0 {
			fmt.Printf("benchgate: FAIL — %d scenario(s) over their memory ceiling\n", len(failures))
			os.Exit(1)
		}
		fmt.Println("benchgate: OK")
		return
	}

	var skipNsRe, skipMemRe *regexp.Regexp
	if *skipNs != "" {
		var err error
		if skipNsRe, err = regexp.Compile(*skipNs); err != nil {
			fatal(fmt.Errorf("bad -skip-ns regexp: %w", err))
		}
	}
	if *skipMem != "" {
		var err error
		if skipMemRe, err = regexp.Compile(*skipMem); err != nil {
			fatal(fmt.Errorf("bad -skip-mem regexp: %w", err))
		}
	}

	cur, err := parse(*in)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *write != "" {
		cur.Note = "median ns/op, B/op, allocs/op across -count repetitions; regenerate with `make bench-baseline`"
		if err := emit(*write, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d benchmarks)\n", *write, len(cur.Benchmarks))
		return
	}

	if *baseline == "" {
		fatal(fmt.Errorf("need -baseline (or -write to create one)"))
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	failures, report := compare(base, cur, *tolerance, skipNsRe, skipMemRe)
	cur.Note = report
	if *out != "" {
		if err := emit(*out, cur); err != nil {
			fatal(err)
		}
	}
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Printf("benchgate: FAIL — %d regression(s) beyond %.0f%%\n", len(failures), *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// parse reads bench output and digests it to per-benchmark medians.
func parse(path string) (File, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return File{}, err
		}
		defer f.Close()
		r = f
	}
	type samples struct {
		ns, bytes, allocs []float64
	}
	byName := map[string]*samples{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := byName[name]
		if s == nil {
			s = &samples{}
			byName[name] = s
		}
		s.ns = append(s.ns, ns)
		if bm := bytesField.FindStringSubmatch(line); bm != nil {
			if v, err := strconv.ParseFloat(bm[1], 64); err == nil {
				s.bytes = append(s.bytes, v)
			}
		}
		if am := allocField.FindStringSubmatch(line); am != nil {
			if v, err := strconv.ParseFloat(am[1], 64); err == nil {
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return File{}, err
	}
	out := File{Benchmarks: map[string]Entry{}}
	for name, s := range byName {
		e := Entry{NsPerOp: median(s.ns), Samples: len(s.ns)}
		if len(s.bytes) > 0 {
			v := median(s.bytes)
			e.BytesPerOp = &v
		}
		if len(s.allocs) > 0 {
			v := median(s.allocs)
			e.AllocsPerOp = &v
		}
		out.Benchmarks[name] = e
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// memVerdict gates one raw memory metric (B/op or allocs/op): a failure
// needs the current median to exceed the baseline by both the fractional
// tolerance and the absolute slack. Metrics absent on either side
// (pre-memory baseline, or a run without -benchmem) are not gated.
func memVerdict(base, cur *float64, tolerance, slack float64) (regressed bool, detail string) {
	if base == nil || cur == nil {
		return false, ""
	}
	allowed := *base*(1+tolerance) + slack
	if *cur > allowed {
		return true, fmt.Sprintf("%.0f -> %.0f", *base, *cur)
	}
	return false, ""
}

// compare gates cur against base and renders a human-readable report.
// Benchmarks matching skipNs gate on memory metrics only; benchmarks
// matching skipMem gate on ns/op only (both ⇒ informational).
func compare(base, cur File, tolerance float64, skipNs, skipMem *regexp.Regexp) (failures []string, report string) {
	scale := 1.0
	bc, okB := base.Benchmarks[calibrationName]
	cc, okC := cur.Benchmarks[calibrationName]
	var b strings.Builder
	if okB && okC && bc.NsPerOp > 0 && cc.NsPerOp > 0 {
		scale = cc.NsPerOp / bc.NsPerOp
		fmt.Fprintf(&b, "calibration: runner is %.2fx the baseline machine; comparing normalized ns/op\n", scale)
	} else {
		fmt.Fprintf(&b, "calibration probe missing on one side; comparing raw ns/op\n")
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if name != calibrationName {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		be := base.Benchmarks[name]
		ce, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, name)
			fmt.Fprintf(&b, "  MISSING %-28s baseline %.0f ns/op, absent from this run\n", name, be.NsPerOp)
			continue
		}
		ratio := (ce.NsPerOp / scale) / be.NsPerOp
		var problems []string
		nsInformational := skipNs != nil && skipNs.MatchString(name)
		memInformational := skipMem != nil && skipMem.MatchString(name)
		if ratio > 1+tolerance && !nsInformational {
			problems = append(problems, "ns/op")
		}
		if !memInformational {
			if bad, detail := memVerdict(be.BytesPerOp, ce.BytesPerOp, tolerance, bytesSlack); bad {
				problems = append(problems, "B/op "+detail)
			}
			if bad, detail := memVerdict(be.AllocsPerOp, ce.AllocsPerOp, tolerance, allocSlack); bad {
				problems = append(problems, "allocs/op "+detail)
			}
		}
		verdict := "ok"
		if len(problems) > 0 {
			verdict = "REGRESSION"
			failures = append(failures, name)
		}
		mem := ""
		if ce.AllocsPerOp != nil {
			mem = fmt.Sprintf(", %.0f allocs/op", *ce.AllocsPerOp)
		}
		note := ""
		if len(problems) > 0 {
			note = " [" + strings.Join(problems, "; ") + "]"
		}
		if nsInformational {
			note += " [ns/op informational]"
		}
		if memInformational {
			note += " [mem informational]"
		}
		fmt.Fprintf(&b, "  %-10s %-28s %9.0f -> %9.0f ns/op (normalized %+.1f%%%s)%s\n",
			verdict, name, be.NsPerOp, ce.NsPerOp, (ratio-1)*100, mem, note)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok && name != calibrationName {
			fmt.Fprintf(&b, "  new        %-28s %9.0f ns/op (not gated; refresh the baseline to track)\n",
				name, cur.Benchmarks[name].NsPerOp)
		}
	}
	return failures, b.String()
}

// memMeasurement mirrors experiments.MemPoint: one scenario's measured
// peak from a `glrexp -memreport` file.
type memMeasurement struct {
	N             int    `json:"n"`
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	WallMs        int64  `json:"wall_ms"`
}

// memBudgetFile is the committed ceiling schema (ci/mem_budget.json).
type memBudgetFile struct {
	Note     string            `json:"note,omitempty"`
	Ceilings map[string]uint64 `json:"ceilings"`
}

// gateMemCeiling compares a measured memory report against committed
// ceilings: every budgeted scenario must be present and at or under its
// ceiling; unbudgeted measurements are reported but not gated.
func gateMemCeiling(measuredPath, budgetPath string) (failures []string, report string, err error) {
	data, err := os.ReadFile(measuredPath)
	if err != nil {
		return nil, "", err
	}
	var measured map[string]memMeasurement
	if err := json.Unmarshal(data, &measured); err != nil {
		return nil, "", fmt.Errorf("%s: %w", measuredPath, err)
	}
	data, err = os.ReadFile(budgetPath)
	if err != nil {
		return nil, "", err
	}
	var budget memBudgetFile
	if err := json.Unmarshal(data, &budget); err != nil {
		return nil, "", fmt.Errorf("%s: %w", budgetPath, err)
	}
	if len(budget.Ceilings) == 0 {
		return nil, "", fmt.Errorf("%s: no ceilings", budgetPath)
	}

	names := make([]string, 0, len(budget.Ceilings))
	for name := range budget.Ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		ceiling := budget.Ceilings[name]
		m, ok := measured[name]
		if !ok {
			failures = append(failures, name)
			fmt.Fprintf(&b, "  MISSING    %-14s ceiling %s, absent from %s\n", name, fmtMiB(ceiling), measuredPath)
			continue
		}
		verdict := "ok"
		if m.PeakHeapBytes > ceiling {
			verdict = "OVER"
			failures = append(failures, name)
		}
		fmt.Fprintf(&b, "  %-10s %-14s peak %s of %s ceiling (%.0f%%), wall %d ms\n",
			verdict, name, fmtMiB(m.PeakHeapBytes), fmtMiB(ceiling),
			100*float64(m.PeakHeapBytes)/float64(ceiling), m.WallMs)
	}
	for name, m := range measured {
		if _, ok := budget.Ceilings[name]; !ok {
			fmt.Fprintf(&b, "  unbudgeted %-14s peak %s (not gated; add to the budget to track)\n",
				name, fmtMiB(m.PeakHeapBytes))
		}
	}
	return failures, b.String(), nil
}

// fmtMiB renders a byte count in MiB.
func fmtMiB(b uint64) string { return fmt.Sprintf("%.0f MiB", float64(b)/(1<<20)) }

func load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func emit(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
