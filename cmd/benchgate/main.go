// Command benchgate turns `go test -bench` output into a committed JSON
// baseline and gates CI on benchmark regressions.
//
// Usage:
//
//	go test -bench '...' -count 5 -run '^$' ./... | tee bench.txt
//	benchgate -in bench.txt -write ci/bench_baseline.json        # refresh baseline
//	benchgate -in bench.txt -baseline ci/bench_baseline.json \
//	          -out BENCH_spanner.json -tolerance 0.15           # gate
//
// Parsing takes the MEDIAN ns/op across the -count repetitions of each
// benchmark, which is robust to scheduler noise. Before comparing, both
// sides are normalized by the BenchmarkCalibration probe (a fixed
// CPU-bound workload): the gate compares
//
//	(current ns/op ÷ current calibration) vs (baseline ns/op ÷ baseline calibration)
//
// so a slower or faster CI runner shifts every benchmark and the probe
// together and cancels out, while a real code regression moves only the
// affected benchmarks. A benchmark is a failure when its normalized
// ratio exceeds 1 + tolerance. Benchmarks present in the baseline but
// missing from the run fail the gate; new benchmarks are reported and
// recorded but not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// calibrationName marks the machine-speed probe; it is recorded but never
// gated.
const calibrationName = "Calibration"

// Entry is one benchmark's digest.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"` // median across repetitions
	Samples int     `json:"samples"`
}

// File is the JSON schema shared by the baseline and the emitted report.
type File struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+)\s+ns/op`)

func main() {
	var (
		in        = flag.String("in", "", "bench output file (default stdin)")
		write     = flag.String("write", "", "write/refresh the baseline at this path and exit")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against")
		out       = flag.String("out", "", "write the current digest (with verdicts in the note) to this path")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression after normalization")
	)
	flag.Parse()

	cur, err := parse(*in)
	if err != nil {
		fatal(err)
	}
	if len(cur.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *write != "" {
		cur.Note = "median ns/op across -count repetitions; regenerate with `make bench-baseline`"
		if err := emit(*write, cur); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d benchmarks)\n", *write, len(cur.Benchmarks))
		return
	}

	if *baseline == "" {
		fatal(fmt.Errorf("need -baseline (or -write to create one)"))
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	failures, report := compare(base, cur, *tolerance)
	cur.Note = report
	if *out != "" {
		if err := emit(*out, cur); err != nil {
			fatal(err)
		}
	}
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Printf("benchgate: FAIL — %d regression(s) beyond %.0f%%\n", len(failures), *tolerance*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// parse reads bench output and digests it to per-benchmark medians.
func parse(path string) (File, error) {
	var r io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return File{}, err
		}
		defer f.Close()
		r = f
	}
	samples := map[string][]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[name] = append(samples[name], ns)
	}
	if err := sc.Err(); err != nil {
		return File{}, err
	}
	out := File{Benchmarks: map[string]Entry{}}
	for name, xs := range samples {
		out.Benchmarks[name] = Entry{NsPerOp: median(xs), Samples: len(xs)}
	}
	return out, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare gates cur against base and renders a human-readable report.
func compare(base, cur File, tolerance float64) (failures []string, report string) {
	scale := 1.0
	bc, okB := base.Benchmarks[calibrationName]
	cc, okC := cur.Benchmarks[calibrationName]
	var b strings.Builder
	if okB && okC && bc.NsPerOp > 0 && cc.NsPerOp > 0 {
		scale = cc.NsPerOp / bc.NsPerOp
		fmt.Fprintf(&b, "calibration: runner is %.2fx the baseline machine; comparing normalized ns/op\n", scale)
	} else {
		fmt.Fprintf(&b, "calibration probe missing on one side; comparing raw ns/op\n")
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if name != calibrationName {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		be := base.Benchmarks[name]
		ce, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, name)
			fmt.Fprintf(&b, "  MISSING %-28s baseline %.0f ns/op, absent from this run\n", name, be.NsPerOp)
			continue
		}
		ratio := (ce.NsPerOp / scale) / be.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Fprintf(&b, "  %-10s %-28s %9.0f -> %9.0f ns/op (normalized %+.1f%%)\n",
			verdict, name, be.NsPerOp, ce.NsPerOp, (ratio-1)*100)
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok && name != calibrationName {
			fmt.Fprintf(&b, "  new        %-28s %9.0f ns/op (not gated; refresh the baseline to track)\n",
				name, cur.Benchmarks[name].NsPerOp)
		}
	}
	return failures, b.String()
}

func load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func emit(path string, f File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
