package glr

import (
	"fmt"
	"strconv"
	"strings"

	"glr/internal/sim"
)

// MobilityKind names one of the built-in mobility models as a value a
// Matrix axis can sweep. Unlike the Mobility implementations (Waypoint,
// Static, RandomWalk), a kind is a plain string: it serializes
// canonically, so matrix drivers can content-address results by it.
// Each kind expands to its model with the paper's default parameters.
type MobilityKind string

// The mobility models a Matrix can sweep.
const (
	// MobilityWaypoint is the paper's random waypoint model (0–20 m/s,
	// no pause).
	MobilityWaypoint MobilityKind = "waypoint"
	// MobilityStatic places nodes uniformly at random and never moves
	// them.
	MobilityStatic MobilityKind = "static"
	// MobilityRandomWalk is the reflecting random walk (0–20 m/s, 20 s
	// legs).
	MobilityRandomWalk MobilityKind = "randomwalk"
)

// Mobility returns the model the kind names, with its default
// parameters.
func (k MobilityKind) Mobility() (Mobility, error) {
	switch k {
	case MobilityWaypoint:
		return Waypoint{}, nil
	case MobilityStatic:
		return Static{}, nil
	case MobilityRandomWalk:
		return RandomWalk{}, nil
	default:
		return nil, fmt.Errorf("glr: unknown mobility kind %q", k)
	}
}

// WorkloadKind names one of the built-in traffic workloads as a value a
// Matrix axis can sweep. Like MobilityKind, a kind is a canonical
// string; it expands to its generator at a given message count with
// default knobs (1 msg/s, one hotspot sink).
type WorkloadKind string

// The workloads a Matrix can sweep.
const (
	// WorkloadPaper is the paper's round-robin evaluation traffic.
	WorkloadPaper WorkloadKind = "paper"
	// WorkloadUniform draws uniformly random distinct pairs at a fixed
	// rate.
	WorkloadUniform WorkloadKind = "uniform"
	// WorkloadPoisson draws uniformly random distinct pairs with
	// Poisson arrivals.
	WorkloadPoisson WorkloadKind = "poisson"
	// WorkloadHotspot concentrates all traffic on a single sink node.
	WorkloadHotspot WorkloadKind = "hotspot"
)

// Workload returns the generator the kind names, scheduling messages
// generations with default knobs.
func (k WorkloadKind) Workload(messages int) (Workload, error) {
	switch k {
	case WorkloadPaper:
		return PaperWorkload{Messages: messages}, nil
	case WorkloadUniform:
		return UniformWorkload{Messages: messages}, nil
	case WorkloadPoisson:
		return PoissonWorkload{Messages: messages}, nil
	case WorkloadHotspot:
		return HotspotWorkload{Messages: messages}, nil
	default:
		return nil, fmt.Errorf("glr: unknown workload kind %q", k)
	}
}

// Axis is one named dimension of a scenario Matrix together with the
// values it sweeps, rendered as strings in sweep order. Axes are the
// presentation surface of a matrix: drivers use them to label regime
// maps and trend plots.
type Axis struct {
	Name   string
	Values []string
}

// Matrix describes a cross-product of scenario axes: every combination
// of protocol × mobility × workload × node count × transmission range ×
// storage limit × fault set becomes one Cell, and each cell is
// replicated over
// Seeds consecutive seeds starting at BaseSeed. Nil or zero fields take
// the defaults noted on each field, so the zero Matrix is the paper's
// Table-1 baseline compared across both protocols.
//
// A Matrix is pure description: Cells enumerates the cross-product in a
// deterministic order, and each Cell compiles to a Scenario via
// Cell.Scenario. The scenario-matrix driver behind cmd/glratlas
// (internal/matrix) executes matrices with a content-keyed result cache
// and renders the regime-map atlas in docs/ATLAS.md.
type Matrix struct {
	// Protocols to compare (default {GLR, Epidemic}).
	Protocols []Protocol
	// Mobilities to sweep (default {MobilityWaypoint}).
	Mobilities []MobilityKind
	// Workloads to sweep (default {WorkloadPaper}).
	Workloads []WorkloadKind
	// Nodes holds the network sizes to sweep (default {50}).
	Nodes []int
	// Ranges holds the transmission ranges in metres (default {100}).
	Ranges []float64
	// StorageLimits holds the per-node buffer bounds to sweep; 0 means
	// unlimited (default {0}).
	StorageLimits []int
	// Faults holds the fault sets to sweep, each one a composition of
	// disruption models applied together; nil inside the list means
	// fault-free (default {nil} — a single fault-free regime).
	Faults [][]Fault

	// Messages is the per-cell workload size (default 200).
	Messages int
	// SimTime is the per-cell horizon in seconds. The default derives
	// it from the workload as Messages + 600 s of delivery slack, the
	// same rule Scenario uses, but pinned per cell so every seed of a
	// cell observes an identical horizon.
	SimTime float64
	// Seeds is the number of replications per cell (default 3).
	Seeds int
	// BaseSeed seeds replication r of every cell with BaseSeed + r
	// (default 1).
	BaseSeed int64
}

// Normalized returns the matrix with every unset field replaced by its
// documented default. Cells, Axes, and Validate all operate on the
// normalized form; drivers should key caches by it so that spelling a
// default out explicitly does not change cell identity.
func (m Matrix) Normalized() Matrix {
	if len(m.Protocols) == 0 {
		m.Protocols = []Protocol{GLR, Epidemic}
	}
	if len(m.Mobilities) == 0 {
		m.Mobilities = []MobilityKind{MobilityWaypoint}
	}
	if len(m.Workloads) == 0 {
		m.Workloads = []WorkloadKind{WorkloadPaper}
	}
	if len(m.Nodes) == 0 {
		m.Nodes = []int{50}
	}
	if len(m.Ranges) == 0 {
		m.Ranges = []float64{100}
	}
	if len(m.StorageLimits) == 0 {
		m.StorageLimits = []int{0}
	}
	if len(m.Faults) == 0 {
		m.Faults = [][]Fault{nil}
	}
	if m.Messages == 0 {
		m.Messages = 200
	}
	if m.SimTime == 0 {
		m.SimTime = float64(m.Messages) + 600
	}
	if m.Seeds == 0 {
		m.Seeds = 3
	}
	if m.BaseSeed == 0 {
		m.BaseSeed = 1
	}
	return m
}

// Validate reports a descriptive error for unusable matrices. It checks
// the normalized form, so empty axes (which default) are fine but any
// explicit value out of its domain is not.
func (m Matrix) Validate() error {
	n := m.Normalized()
	for _, p := range n.Protocols {
		switch p {
		case GLR, Epidemic:
		default:
			return fmt.Errorf("glr: matrix protocol %q unknown", p)
		}
	}
	for _, k := range n.Mobilities {
		if _, err := k.Mobility(); err != nil {
			return err
		}
	}
	for _, k := range n.Workloads {
		if _, err := k.Workload(n.Messages); err != nil {
			return err
		}
	}
	for _, nodes := range n.Nodes {
		if nodes < 2 {
			return fmt.Errorf("glr: matrix node count %d must be ≥ 2", nodes)
		}
	}
	for _, r := range n.Ranges {
		if r <= 0 {
			return fmt.Errorf("glr: matrix range %v must be positive", r)
		}
	}
	for _, s := range n.StorageLimits {
		if s < 0 {
			return fmt.Errorf("glr: matrix storage limit %d must be nonnegative", s)
		}
	}
	// Cells always compile onto the default deployment region, so fault
	// rectangles validate against it here exactly as they will at
	// scenario construction.
	region := sim.DefaultScenario(100).Region
	for fi, fs := range n.Faults {
		for _, f := range fs {
			if err := f.spec().Validate(region, n.SimTime); err != nil {
				return fmt.Errorf("glr: matrix faults[%d]: %w", fi, err)
			}
		}
	}
	switch {
	case n.Messages < 0:
		return fmt.Errorf("glr: matrix message count %d must be nonnegative", n.Messages)
	case n.SimTime <= 0:
		return fmt.Errorf("glr: matrix sim time %v must be positive", n.SimTime)
	case n.Seeds < 1:
		return fmt.Errorf("glr: matrix seed count %d must be ≥ 1", n.Seeds)
	}
	return nil
}

// Axes returns the matrix's dimensions in canonical order — protocol,
// mobility, workload, nodes, range, storage, faults — with their
// normalized value lists rendered as strings.
func (m Matrix) Axes() []Axis {
	n := m.Normalized()
	axes := make([]Axis, 0, 6)
	add := func(name string, vals []string) {
		axes = append(axes, Axis{Name: name, Values: vals})
	}
	ps := make([]string, len(n.Protocols))
	for i, p := range n.Protocols {
		ps[i] = string(p)
	}
	add("protocol", ps)
	ms := make([]string, len(n.Mobilities))
	for i, k := range n.Mobilities {
		ms[i] = string(k)
	}
	add("mobility", ms)
	ws := make([]string, len(n.Workloads))
	for i, k := range n.Workloads {
		ws[i] = string(k)
	}
	add("workload", ws)
	ns := make([]string, len(n.Nodes))
	for i, v := range n.Nodes {
		ns[i] = strconv.Itoa(v)
	}
	add("nodes", ns)
	rs := make([]string, len(n.Ranges))
	for i, v := range n.Ranges {
		rs[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	add("range", rs)
	ss := make([]string, len(n.StorageLimits))
	for i, v := range n.StorageLimits {
		if v == 0 {
			ss[i] = "unlimited"
		} else {
			ss[i] = strconv.Itoa(v)
		}
	}
	add("storage", ss)
	fs := make([]string, len(n.Faults))
	for i, v := range n.Faults {
		if enc := EncodeFaults(v); enc != "" {
			fs[i] = enc
		} else {
			fs[i] = "none"
		}
	}
	add("faults", fs)
	return axes
}

// Cells enumerates the cross-product of the normalized axes in a
// deterministic order: mobility-major, then workload, nodes, range,
// storage, faults, with protocol innermost so a coordinate's protocol
// variants are adjacent. Every cell carries the matrix's Messages and
// SimTime, making it a self-contained, canonically serializable
// scenario spec.
func (m Matrix) Cells() []Cell {
	n := m.Normalized()
	cells := make([]Cell, 0,
		len(n.Mobilities)*len(n.Workloads)*len(n.Nodes)*len(n.Ranges)*
			len(n.StorageLimits)*len(n.Faults)*len(n.Protocols))
	for _, mob := range n.Mobilities {
		for _, work := range n.Workloads {
			for _, nodes := range n.Nodes {
				for _, rng := range n.Ranges {
					for _, storage := range n.StorageLimits {
						for _, faults := range n.Faults {
							for _, proto := range n.Protocols {
								cells = append(cells, Cell{
									Protocol:     proto,
									Mobility:     mob,
									Workload:     work,
									Nodes:        nodes,
									Range:        rng,
									StorageLimit: storage,
									Faults:       EncodeFaults(faults),
									Messages:     n.Messages,
									SimTime:      n.SimTime,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// Cell is one fully determined point of a Matrix: a scenario spec with
// every axis pinned to a concrete value. Cells are plain data — they
// serialize canonically, which is what lets matrix drivers
// content-address cached results — and compile to a runnable Scenario
// with Scenario.
type Cell struct {
	Protocol     Protocol
	Mobility     MobilityKind
	Workload     WorkloadKind
	Nodes        int
	Range        float64 // metres
	StorageLimit int     // messages per node; 0 = unlimited
	// Faults is the cell's fault set in EncodeFaults form; "" means
	// fault-free. A canonical string (not a slice) keeps cells
	// comparable — they key caches and regime-map groupings — and
	// omitempty keeps fault-free cells byte-identical to cells
	// serialized before the fault axis existed.
	Faults   string `json:",omitempty"`
	Messages int
	SimTime  float64 // seconds
}

// Options expands the cell into the scenario options it pins. The run
// seed is deliberately not among them: drivers append WithSeed per
// replication.
func (c Cell) Options() ([]Option, error) {
	mob, err := c.Mobility.Mobility()
	if err != nil {
		return nil, err
	}
	work, err := c.Workload.Workload(c.Messages)
	if err != nil {
		return nil, err
	}
	faults, err := ParseFaults(c.Faults)
	if err != nil {
		return nil, err
	}
	opts := []Option{
		WithProtocol(c.Protocol),
		WithMobility(mob),
		WithWorkload(work),
		WithNodes(c.Nodes),
		WithRange(c.Range),
		WithStorageLimit(c.StorageLimit),
		WithSimTime(c.SimTime),
	}
	if len(faults) > 0 {
		opts = append(opts, WithFaults(faults...))
	}
	return opts, nil
}

// Scenario compiles the cell into a runnable Scenario, seeded with the
// extra options (typically WithSeed for one replication, WithObserver
// for a probe).
func (c Cell) Scenario(extra ...Option) (*Scenario, error) {
	opts, err := c.Options()
	if err != nil {
		return nil, err
	}
	return NewScenario(append(opts, extra...)...)
}

// Coordinate returns the cell with its protocol cleared — the shared
// scenario coordinate a regime map compares protocols at.
func (c Cell) Coordinate() Cell {
	c.Protocol = ""
	return c
}

// Label renders the cell as a compact slug —
// protocol/mobility/workload/n<nodes>/r<range>/s<storage> — with "s∞"
// for unlimited storage and the fault-set slug appended only when the
// cell injects faults, so fault-free labels match those minted before
// the fault axis existed. Labels identify cells in the atlas and in
// golden files; cache files are named by content key, not label.
func (c Cell) Label() string {
	storage := "s∞"
	if c.StorageLimit > 0 {
		storage = "s" + strconv.Itoa(c.StorageLimit)
	}
	parts := []string{
		string(c.Protocol),
		string(c.Mobility),
		string(c.Workload),
		"n" + strconv.Itoa(c.Nodes),
		"r" + strconv.FormatFloat(c.Range, 'g', -1, 64),
		storage,
	}
	if c.Protocol == "" {
		parts = parts[1:]
	}
	if c.Faults != "" {
		parts = append(parts, c.Faults)
	}
	return strings.Join(parts, "/")
}
