package glr

import (
	"strings"
	"testing"
)

func TestDefaultConfigRuns(t *testing.T) {
	cfg := DefaultConfig(250)
	cfg.Messages = 20
	cfg.SimTime = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 20 {
		t.Errorf("generated %d, want 20", res.Generated)
	}
	if res.DeliveryRatio < 0.9 {
		t.Errorf("dense run delivered only %.2f", res.DeliveryRatio)
	}
	if !strings.Contains(res.String(), "delivered") {
		t.Error("Result.String should be human readable")
	}
}

func TestCompare(t *testing.T) {
	cfg := DefaultConfig(250)
	cfg.Messages = 20
	cfg.SimTime = 200
	mine, base, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mine.Generated != base.Generated {
		t.Error("both protocols must see identical workloads")
	}
	// GLR acks custody; epidemic never acks.
	if mine.Acks == 0 {
		t.Error("GLR should produce custody acks")
	}
	if base.Acks != 0 {
		t.Error("epidemic must not ack")
	}
}

func TestConfigKnobs(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Messages = 10
	cfg.SimTime = 100
	cfg.GLRConfig = &GLRConfig{CheckInterval: 0.5, Copies: 2, Location: "all", K: 2}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("GLR knobs rejected: %v", err)
	}
	cfg.GLRConfig = &GLRConfig{Location: "bogus"}
	if _, err := Run(cfg); err == nil {
		t.Error("bogus location regime accepted")
	}
	cfg.GLRConfig = nil
	cfg.Protocol = Epidemic
	cfg.EpidemicConfig = &EpidemicConfig{ExchangeInterval: 2, DataSendRate: 5, BroadcastDeltas: true}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("epidemic knobs rejected: %v", err)
	}
	cfg.Protocol = "bogus"
	if _, err := Run(cfg); err == nil {
		t.Error("bogus protocol accepted")
	}
}

func TestCustomTraffic(t *testing.T) {
	cfg := DefaultConfig(250)
	cfg.Traffic = []Message{{Src: 0, Dst: 5, At: 1}, {Src: 3, Dst: 7, At: 2}}
	cfg.SimTime = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != 2 {
		t.Errorf("generated %d, want 2", res.Generated)
	}
}

func TestStaticPlacement(t *testing.T) {
	cfg := DefaultConfig(250)
	cfg.Static = true
	cfg.Messages = 10
	cfg.SimTime = 100
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.Nodes = 1
	if _, err := Run(cfg); err == nil {
		t.Error("single-node config accepted")
	}
	cfg = DefaultConfig(100)
	cfg.Traffic = []Message{{Src: 0, Dst: 0, At: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("self-loop traffic accepted")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	infos := Experiments()
	if len(infos) != 14 {
		t.Fatalf("got %d experiments, want 14 (every table and figure + ablation + scaling + disruption)", len(infos))
	}
	want := []string{"ablate", "disruption", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "scale", "tab2", "tab3", "tab4", "tab5", "tab6"}
	for i, id := range want {
		if infos[i].ID != id {
			t.Errorf("experiment[%d] = %q, want %q", i, infos[i].ID, id)
		}
		if infos[i].Title == "" || infos[i].Description == "" {
			t.Errorf("experiment %q lacks documentation", id)
		}
	}
	if _, err := RunExperiment("nope", Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentFig1(t *testing.T) {
	out, err := RunExperiment("fig1", Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 1") {
		t.Error("fig1 output missing title")
	}
}

func TestDeterministicPublicRuns(t *testing.T) {
	cfg := DefaultConfig(150)
	cfg.Messages = 30
	cfg.SimTime = 200
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs must give identical results")
	}
}
